// WAN dissemination: the workload the paper's introduction motivates — a
// sender pushing updates to receivers spread over a three-region WAN where
// an entire downstream region can miss the initial multicast.
//
// The run knocks out region 2's initial multicast completely, so local
// recovery alone cannot help: a randomly elected member of region 2 sends
// a remote request to the parent region (expected λ = 1 per round), pulls
// the repair across the WAN once, and re-multicasts it regionally (§2.2).
//
//	go run ./examples/wandissemination
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// Chain hierarchy: region 0 (sender's LAN) -> region 1 -> region 2.
	params := repro.DefaultParams()
	params.ParentRTT = 110 * time.Millisecond // WAN round-trip estimate
	g, err := repro.NewGroup(
		repro.WithRegions(20, 20, 20),
		repro.WithParams(params),
		repro.WithBurstDataLoss(0.15), // bursty WAN loss on the initial multicast
		repro.WithRegionBlackout(2),   // region 2's multicast feed is down entirely
		repro.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	g.StartSessions()

	var ids []repro.MessageID
	for i := 0; i < 15; i++ {
		i := i
		g.At(time.Duration(i)*30*time.Millisecond, func() {
			ids = append(ids, g.Publish([]byte(fmt.Sprintf("wan-update-%02d", i))))
		})
	}
	g.Run(5 * time.Second)

	fmt.Printf("%d members in %d regions; %d messages published\n\n",
		g.NumMembers(), g.NumRegions(), len(ids))

	complete := 0
	for _, id := range ids {
		if g.CountReceived(id) == g.NumMembers() {
			complete++
		}
	}
	fmt.Printf("fully delivered: %d/%d messages\n", complete, len(ids))

	s := g.Stats()
	fmt.Printf("local requests:      %d\n", s.LocalRequests)
	fmt.Printf("remote requests:     %d   (cross-WAN pulls; λ=1 keeps this near one per regional loss)\n", s.RemoteRequests)
	fmt.Printf("regional multicasts: %d   (one WAN copy fans out to the whole losing region)\n", s.RegionalMulticasts)
	fmt.Printf("repairs:             %d\n", s.Repairs)
	fmt.Printf("mean recovery:       %.1f ms\n", s.MeanRecoveryMs)

	// Per-member traffic at the sender vs a random leaf shows the load
	// staying distributed rather than concentrating anywhere.
	sender := g.Member(g.SenderID()).Metrics()
	leaf := g.Member(repro.NodeID(g.NumMembers() - 1)).Metrics()
	fmt.Printf("\nsender fielded %d requests; a leaf member fielded %d — recovery load is spread, no repair server\n",
		sender.LocalReqRecv.Value()+sender.RemoteReqRecv.Value(),
		leaf.LocalReqRecv.Value()+leaf.RemoteReqRecv.Value())
}

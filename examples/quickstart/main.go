// Quickstart: publish a message stream over a lossy 50-member region and
// watch RRMP's randomized recovery and two-phase buffering at work.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A single region of 50 members; 20% of the initial multicast copies
	// are lost independently per receiver (recovery traffic is lossless,
	// as in the paper's §4 evaluation).
	g, err := repro.NewGroup(
		repro.WithRegions(50),
		repro.WithDataLoss(0.20),
		repro.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	g.StartSessions() // sender heartbeats so tail losses are detected

	// Publish ten messages, 20 ms apart.
	var ids []repro.MessageID
	for i := 0; i < 10; i++ {
		i := i
		g.At(time.Duration(i)*20*time.Millisecond, func() {
			ids = append(ids, g.Publish([]byte(fmt.Sprintf("update-%d", i))))
		})
	}

	// Advance virtual time; every event (losses, NAKs, repairs, idle
	// timers, long-term elections) runs deterministically.
	g.Run(2 * time.Second)

	for _, id := range ids {
		fmt.Printf("message %-6v delivered to %d/%d members, still buffered at %d\n",
			id, g.CountReceived(id), g.NumMembers(), g.CountBuffered(id))
	}

	s := g.Stats()
	fmt.Printf("\nrecovery: %d local requests -> %d repairs (mean %.1f ms to repair a loss)\n",
		s.LocalRequests, s.Repairs, s.MeanRecoveryMs)
	fmt.Printf("buffering: mean %.1f ms per message per member; %d long-term copies remain\n",
		s.MeanBufferingMs, s.LongTermEntries)
	fmt.Printf("network: %d packets / %d bytes total\n", g.TotalPacketsSent(), g.TotalBytesSent())
}

// Stock ticker: a high-rate data feed (the classic reliable-multicast
// workload) streamed to a 100-member region, comparing what three
// buffering policies pay in memory for the same reliability.
//
// The ticker publishes 200 quotes at 5 ms intervals with 10% receiver
// loss. Under the paper's two-phase policy, each member holds a quote only
// while requests still arrive (T = 40 ms of quiet) and then ~C/n of them
// keep long-term copies; the fixed-hold and buffer-all baselines pay far
// more for the same delivery.
//
//	go run ./examples/stockticker
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

type policyChoice struct {
	name string
	opts []repro.Option
}

func main() {
	const (
		quotes = 200
		rate   = 5 * time.Millisecond
	)
	params := repro.DefaultParams()
	params.LongTermTTL = time.Second

	choices := []policyChoice{
		{"two-phase (paper)", []repro.Option{repro.WithPolicy(repro.PolicyTwoPhase)}},
		{"fixed-hold 1s", []repro.Option{repro.WithPolicy(repro.PolicyFixedHold), repro.WithFixedHold(time.Second)}},
		{"buffer-all", []repro.Option{repro.WithPolicy(repro.PolicyBufferAll)}},
	}

	fmt.Printf("%-20s %10s %14s %12s %14s\n",
		"policy", "delivered", "buf(msg·s)", "peak/member", "mean-hold(ms)")
	for _, choice := range choices {
		opts := append([]repro.Option{
			repro.WithRegions(100),
			repro.WithParams(params),
			repro.WithDataLoss(0.10),
			repro.WithSeed(99),
		}, choice.opts...)
		g, err := repro.NewGroup(opts...)
		if err != nil {
			log.Fatal(err)
		}
		g.StartSessions()
		for i := 0; i < quotes; i++ {
			i := i
			g.At(time.Duration(i)*rate, func() {
				g.Publish([]byte(fmt.Sprintf("ACME %d.%02d", 100+i/100, i%100)))
			})
		}
		g.Run(4 * time.Second)

		s := g.Stats()
		peak := 0
		for _, m := range g.Members() {
			if p := m.Buffer().PeakLen(); p > peak {
				peak = p
			}
		}
		deliveryPct := 100 * float64(s.Delivered) / float64(quotes*g.NumMembers())
		fmt.Printf("%-20s %9.2f%% %14.1f %12d %14.1f\n",
			choice.name, deliveryPct, s.BufferIntegral, peak, s.MeanBufferingMs)
	}
	fmt.Println("\nSame feed, same loss, same delivery — two-phase buffers a fraction of the baselines.")
}

// Churn: receivers join and leave a long-lived session while the stream
// flows. Demonstrates §3.2's leave protocol — a departing member transfers
// every long-term buffered message to randomly selected peers, so losses
// stay recoverable even after all original bufferers are gone.
//
// The run compares two worlds on the same seed:
//
//   - graceful: the bufferers call Leave() and hand their copies off;
//     a straggler that missed the message recovers it afterwards.
//
//   - crash:    the same members crash; the straggler's loss is permanent
//     (the paper's §5 limitation made concrete).
//
//     go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	for _, graceful := range []bool{true, false} {
		mode := "graceful leave (with handoff)"
		if !graceful {
			mode = "crash (no handoff)"
		}
		fmt.Printf("=== %s ===\n", mode)
		run(graceful)
		fmt.Println()
	}
}

func run(graceful bool) {
	params := repro.DefaultParams()
	params.LongTermTTL = 0 // keep long-term copies for the whole session
	g, err := repro.NewGroup(
		repro.WithRegions(30),
		repro.WithParams(params),
		repro.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The sender publishes one message that member 29 (our straggler)
	// never receives: everyone else gets it, goes idle, and only a few
	// long-term bufferers keep copies.
	straggler := repro.NodeID(29)
	id := repro.MessageID{Source: g.SenderID(), Seq: 1}
	bufferers := []repro.NodeID{5, 12, 20}
	for n := repro.NodeID(0); n < 29; n++ {
		isBufferer := false
		for _, b := range bufferers {
			if n == b {
				isBufferer = true
			}
		}
		if isBufferer {
			g.Member(n).InjectLongTerm(id, []byte("session-state"))
		} else {
			g.Member(n).InjectDiscarded(id)
		}
	}
	fmt.Printf("message %v held long-term by members %v; member %d missed it\n", id, bufferers, straggler)

	// All bufferers depart at t=0.
	for _, b := range bufferers {
		b := b
		if graceful {
			g.At(0, func() { g.Leave(b) })
		} else {
			g.At(0, func() { g.Crash(b) })
		}
	}
	// The straggler detects its loss at t=100ms and runs local recovery.
	g.At(100*time.Millisecond, func() { g.Member(straggler).StartRecovery(id) })
	g.Run(10 * time.Second)

	holders := 0
	for n := repro.NodeID(0); n < repro.NodeID(g.NumMembers()); n++ {
		if g.Member(n).Buffer().Has(id) {
			holders++
		}
	}
	s := g.Stats()
	fmt.Printf("after departure: %d members hold the message (handoffs sent: %d)\n", holders, s.Handoffs)
	if g.Member(straggler).HasReceived(id) {
		fmt.Printf("straggler recovered the message in %.1f ms after %d requests\n",
			g.Member(straggler).Metrics().RecoveryLatency.Mean(),
			g.Member(straggler).Metrics().LocalReqSent.Value())
	} else {
		fmt.Printf("straggler NEVER recovered: all copies died with the crashed bufferers\n")
	}
}

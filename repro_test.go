package repro_test

import (
	"testing"
	"time"

	"repro"
)

func TestGroupDefaults(t *testing.T) {
	g, err := repro.NewGroup()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumMembers() != 100 || g.NumRegions() != 1 {
		t.Fatalf("members=%d regions=%d", g.NumMembers(), g.NumRegions())
	}
	id := g.Publish([]byte("hello"))
	g.Run(time.Second)
	if got := g.CountReceived(id); got != 100 {
		t.Fatalf("received %d/100 on a lossless network", got)
	}
}

func TestGroupRecoversUnderLoss(t *testing.T) {
	params := repro.DefaultParams()
	params.C = 40 // guarantee long-term bufferers for certainty
	g, err := repro.NewGroup(
		repro.WithRegions(40),
		repro.WithDataLoss(0.3),
		repro.WithSeed(7),
		repro.WithParams(params),
	)
	if err != nil {
		t.Fatal(err)
	}
	g.StartSessions()
	var ids []repro.MessageID
	for i := 0; i < 5; i++ {
		i := i
		g.At(time.Duration(i)*20*time.Millisecond, func() {
			ids = append(ids, g.Publish([]byte{byte(i)}))
		})
	}
	g.Run(3 * time.Second)
	for _, id := range ids {
		if got := g.CountReceived(id); got != 40 {
			t.Fatalf("message %v received by %d/40", id, got)
		}
	}
	s := g.Stats()
	if s.LocalRequests == 0 {
		t.Fatal("no recovery traffic despite 30% loss")
	}
	if s.MeanRecoveryMs <= 0 {
		t.Fatal("recovery latency not recorded")
	}
}

func TestGroupMultiRegion(t *testing.T) {
	g, err := repro.NewGroup(repro.WithRegions(10, 10, 10), repro.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRegions() != 3 {
		t.Fatalf("regions = %d", g.NumRegions())
	}
	id := g.Publish([]byte("multi"))
	g.Run(2 * time.Second)
	if got := g.CountReceived(id); got != 30 {
		t.Fatalf("received %d/30", got)
	}
}

func TestGroupStar(t *testing.T) {
	g, err := repro.NewGroup(repro.WithStar(5, 5, 5), repro.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	id := g.Publish([]byte("star"))
	g.Run(2 * time.Second)
	if got := g.CountReceived(id); got != 15 {
		t.Fatalf("received %d/15", got)
	}
}

func TestGroupPolicies(t *testing.T) {
	for _, kind := range []repro.PolicyKind{
		repro.PolicyTwoPhase, repro.PolicyFixedHold, repro.PolicyBufferAll, repro.PolicyHashElect,
	} {
		g, err := repro.NewGroup(repro.WithRegions(10), repro.WithPolicy(kind), repro.WithSeed(5))
		if err != nil {
			t.Fatalf("policy %d: %v", kind, err)
		}
		id := g.Publish([]byte("p"))
		g.Run(2 * time.Second)
		if got := g.CountReceived(id); got != 10 {
			t.Fatalf("policy %d: received %d/10", kind, got)
		}
		if kind == repro.PolicyBufferAll && g.CountBuffered(id) != 10 {
			t.Fatal("buffer-all discarded")
		}
	}
}

func TestGroupInvalidOptions(t *testing.T) {
	if _, err := repro.NewGroup(repro.WithRegions()); err == nil {
		t.Fatal("empty regions accepted")
	}
	if _, err := repro.NewGroup(repro.WithRegions(0)); err == nil {
		t.Fatal("zero-size region accepted")
	}
}

func TestGroupLeaveAndCrash(t *testing.T) {
	g, err := repro.NewGroup(repro.WithRegions(10), repro.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	id := g.Publish([]byte("x"))
	g.Run(500 * time.Millisecond)
	g.Leave(3)
	g.Crash(4)
	id2 := g.Publish([]byte("y"))
	g.Run(time.Second)
	if g.Member(3).HasReceived(id2) || g.Member(4).HasReceived(id2) {
		t.Fatal("departed members processed new traffic")
	}
	_ = id
}

func TestGroupDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, int64) {
		g, err := repro.NewGroup(repro.WithRegions(20), repro.WithDataLoss(0.2), repro.WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		g.StartSessions()
		g.Publish([]byte("d"))
		g.Run(time.Second)
		return g.TotalPacketsSent(), g.Stats().Delivered
	}
	p1, d1 := run()
	p2, d2 := run()
	if p1 != p2 || d1 != d2 {
		t.Fatalf("same seed diverged: packets %d vs %d, delivered %d vs %d", p1, p2, d1, d2)
	}
}

func TestGroupBurstLoss(t *testing.T) {
	params := repro.DefaultParams()
	params.C = 20
	g, err := repro.NewGroup(
		repro.WithRegions(20),
		repro.WithBurstDataLoss(0.2),
		repro.WithSeed(8),
		repro.WithParams(params),
	)
	if err != nil {
		t.Fatal(err)
	}
	g.StartSessions()
	id := g.Publish([]byte("burst"))
	g.Run(3 * time.Second)
	if got := g.CountReceived(id); got != 20 {
		t.Fatalf("received %d/20 under burst loss", got)
	}
}

func TestFigureFacades(t *testing.T) {
	if s := repro.Figure3([]float64{6}, 100, 1000, 1); len(s) != 2 {
		t.Fatal("Figure3 facade")
	}
	if s := repro.Figure4([]float64{1, 6}, 100, 1000, 1); len(s) != 2 {
		t.Fatal("Figure4 facade")
	}
	if s, err := repro.Figure6(2, 1); err != nil || len(s.X) == 0 {
		t.Fatalf("Figure6 facade: %v", err)
	}
	if s, err := repro.Figure7(1); err != nil || len(s.TimesMs) == 0 {
		t.Fatalf("Figure7 facade: %v", err)
	}
	if res, err := repro.RunSearch(repro.SearchConfig{RegionSize: 30, Bufferers: 5, Runs: 3, Seed: 1}); err != nil || res.FailedRuns != 0 {
		t.Fatalf("RunSearch facade: %+v err=%v", res, err)
	}
}

// TestGroupByteBudget drives the facade's byte-budget path: a binding
// budget produces pressure evictions and the byte stats surface through
// GroupStats, while delivery losses stay explicitly counted.
func TestGroupByteBudget(t *testing.T) {
	g, err := repro.NewGroup(
		repro.WithRegions(10),
		repro.WithSeed(3),
		repro.WithDataLoss(0.1),
		repro.WithByteBudget(2048),
		repro.WithCopyOnStore(),
	)
	if err != nil {
		t.Fatal(err)
	}
	g.StartSessions()
	for i := 0; i < 10; i++ {
		i := i
		g.At(time.Duration(i)*20*time.Millisecond, func() { g.Publish(make([]byte, 512)) })
	}
	g.Run(3 * time.Second)
	s := g.Stats()
	if s.PressureEvictions == 0 {
		t.Fatal("a 2 KB budget under a 5 KB workload produced no pressure evictions")
	}
	if s.PeakBufferedBytes == 0 || s.PeakBufferedBytes > 2048 {
		t.Fatalf("peak buffered bytes %d outside (0, 2048]", s.PeakBufferedBytes)
	}
	if s.ByteIntegral <= 0 {
		t.Fatal("byte integral not accumulated")
	}
}

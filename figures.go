package repro

import (
	"time"

	"repro/internal/runner"
)

// Series is one named curve of an experiment (paired X/Y points in the
// figure's units).
type Series = runner.Series

// Fig7Series is Figure 7's sampled output.
type Fig7Series = runner.Fig7Series

// Experiment result row types, re-exported from the runner.
type (
	// PolicyComparison is an A1 row.
	PolicyComparison = runner.PolicyComparison
	// LoadBalance is an A2 row.
	LoadBalance = runner.LoadBalance
	// SearchImplosion is an A3 row.
	SearchImplosion = runner.SearchImplosion
	// ChurnResult is an A4 row.
	ChurnResult = runner.ChurnResult
	// LambdaPoint is an A5 row.
	LambdaPoint = runner.LambdaPoint
	// OverheadResult is an A6 row.
	OverheadResult = runner.OverheadResult
	// VoDResult is an A7 row.
	VoDResult = runner.VoDResult
	// AdaptiveResult is an A8 row.
	AdaptiveResult = runner.AdaptiveResult
	// SearchConfig parameterizes RunSearch.
	SearchConfig = runner.SearchConfig
	// SearchResult is RunSearch's aggregate.
	SearchResult = runner.SearchResult
)

// Figure3 regenerates the paper's Figure 3: P(k long-term bufferers) for
// each C, analytic Poisson plus Monte Carlo election over a region of n.
func Figure3(cs []float64, n, trials int, seed uint64) []Series {
	return runner.Figure3(cs, n, trials, seed)
}

// Figure4 regenerates Figure 4: P(no long-term bufferer) versus C.
func Figure4(cs []float64, n, trials int, seed uint64) []Series {
	return runner.Figure4(cs, n, trials, seed)
}

// Figure6 regenerates Figure 6: mean feedback-based buffering time versus
// the number of initial holders (region of 100, T = 40 ms).
func Figure6(runs int, seed uint64) (Series, error) {
	cfg := runner.DefaultFig6Config()
	cfg.Runs = runs
	cfg.Seed = seed
	return runner.Figure6(cfg)
}

// Figure7 regenerates Figure 7: #received vs #buffered over time from one
// initial holder in a 100-member region. The horizon extends past the
// paper's 140 ms x-range so the buffered count's collapse to zero is
// visible in full.
func Figure7(seed uint64) (Fig7Series, error) {
	return runner.Figure7(100, seed, time.Millisecond, 250*time.Millisecond)
}

// Figure8 regenerates Figure 8: mean search time versus bufferer count.
func Figure8(runs int, seed uint64) (Series, error) { return runner.Figure8(runs, seed) }

// Figure9 regenerates Figure 9: mean search time versus region size.
func Figure9(runs int, seed uint64) (Series, error) { return runner.Figure9(runs, seed) }

// RunSearch runs one search-time configuration (the Figures 8/9 kernel,
// including the deterministic §3.4 variant).
func RunSearch(cfg SearchConfig) (SearchResult, error) { return runner.RunSearch(cfg) }

// AblationPolicies runs A1: buffering-policy cost vs reliability.
func AblationPolicies(seed uint64) ([]PolicyComparison, error) {
	return runner.AblationPolicies(seed)
}

// AblationLoadBalance runs A2: buffering load spread (byte-seconds, flat
// and two-level topologies), RRMP vs tree.
func AblationLoadBalance(seed uint64) ([]LoadBalance, error) {
	return runner.AblationLoadBalance(seed)
}

// AblationLoadBalanceSized is A2 under a payload-size model (mean bytes
// and fixed/uniform/lognormal draws).
func AblationLoadBalanceSized(payloadBytes int, model string, seed uint64) ([]LoadBalance, error) {
	return runner.AblationLoadBalanceSized(payloadBytes, model, seed)
}

// AblationSearchImplosion runs A3: multicast-query reply implosion vs the
// random walk.
func AblationSearchImplosion(runs int, seed uint64) ([]SearchImplosion, error) {
	return runner.AblationSearchImplosion(runs, seed)
}

// AblationChurn runs A4: graceful handoff vs crash of all bufferers.
func AblationChurn(seed uint64) ([]ChurnResult, error) { return runner.AblationChurn(seed) }

// AblationLambda runs A5: the λ remote-recovery tradeoff.
func AblationLambda(lambdas []float64, runs int, seed uint64) ([]LambdaPoint, error) {
	return runner.AblationLambda(lambdas, runs, seed)
}

// AblationStabilityTraffic runs A6: implicit feedback vs explicit
// stability-detection digests.
func AblationStabilityTraffic(seed uint64) ([]OverheadResult, error) {
	return runner.AblationStabilityTraffic(seed)
}

// AblationVoDPrefixPush runs A7: the VoD prefix-push workload (late
// joiners needing the whole published prefix) under the two-phase,
// fixed-hold and buffer-all policies.
func AblationVoDPrefixPush(seed uint64) ([]VoDResult, error) {
	return runner.AblationVoDPrefixPush(seed)
}

// AblationAdaptiveDemand runs A8: the diurnal-burst workload over a lossy
// group under the two-phase, fixed-hold and adaptive policies, ranked by
// the default-weight fitness score.
func AblationAdaptiveDemand(seed uint64) ([]AdaptiveResult, error) {
	return runner.AblationAdaptiveDemand(seed)
}

package repro

import (
	"repro/internal/rmtp"
	"repro/internal/runner"
)

// RMTP-baseline identifiers, re-exported so facade users can build and
// inspect tree-protocol deployments without importing internals. The
// protocol is also reachable declaratively: Scenario.Protocol = "rmtp"
// (or Sweep.Protocols) runs any scenario cell under the baseline through
// RunScenario / RunSweep.
type (
	// RMTPParams tunes the tree baseline (NAK/ACK timers, retry budget,
	// byte budget, copy-on-store) — the rmtp side of Params.
	RMTPParams = rmtp.Params
	// RMTPNode is one tree-protocol participant (receiver or repair
	// server).
	RMTPNode = rmtp.Node
	// RMTPMetrics are per-node baseline counters (NAKs, ACKs, give-ups,
	// unrecoverable losses, recovery latency).
	RMTPMetrics = rmtp.Metrics
	// TreeCluster is a fully wired RMTP deployment: one repair server per
	// region, parented along the region hierarchy.
	TreeCluster = runner.TreeCluster
	// TreeClusterConfig describes a TreeCluster (topology, params, seed,
	// loss model).
	TreeClusterConfig = runner.TreeClusterConfig
)

// DefaultRMTPParams returns the baseline's defaults, chosen to mirror the
// RRMP defaults for fair comparison.
func DefaultRMTPParams() RMTPParams { return rmtp.DefaultParams() }

// NewTreeCluster builds an RMTP-baseline deployment on the given topology:
// the first member of each region becomes its repair server and the root
// region's server is the sender. The cluster exposes the same fault
// surface the RRMP facade has: Leave, Crash and Recover.
func NewTreeCluster(cfg TreeClusterConfig) (*TreeCluster, error) {
	return runner.NewTreeCluster(cfg)
}

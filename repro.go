package repro

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	policyspec "repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/rrmp"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Re-exported identifiers so facade users speak one vocabulary.
type (
	// NodeID identifies a group member.
	NodeID = topology.NodeID
	// MessageID identifies a data message ([source, sequence], §1).
	MessageID = wire.MessageID
	// Params are the protocol tunables (see internal/rrmp for field docs).
	Params = rrmp.Params
	// Metrics are per-member protocol counters.
	Metrics = rrmp.Metrics
	// Member is one protocol participant.
	Member = rrmp.Member
)

// DefaultParams returns the paper's §4 parameter defaults.
func DefaultParams() Params { return rrmp.DefaultParams() }

// PolicyKind selects a buffering policy for a Group.
type PolicyKind int

// Buffering policies.
const (
	// PolicyTwoPhase is the paper's algorithm (§3): feedback-based
	// short-term buffering plus randomized long-term election.
	PolicyTwoPhase PolicyKind = iota + 1
	// PolicyFixedHold buffers every message for a fixed time (Bimodal
	// Multicast's scheme).
	PolicyFixedHold
	// PolicyBufferAll never discards (the conservative strategy of §1).
	PolicyBufferAll
	// PolicyHashElect picks deterministic bufferers by hashing
	// (the authors' earlier scheme, §3.4).
	PolicyHashElect
)

// config collects the functional options.
type config struct {
	regionSizes []int
	star        bool
	tree        *topology.Topology
	treeErr     error
	seed        uint64
	params      Params
	lossP       float64
	burstLoss   bool
	hashLoss    bool
	blackouts   []int
	policy      PolicyKind
	policySpec  string
	fixedHold   time.Duration
	tracer      trace.Tracer
	shards      int
}

// Option configures NewGroup.
type Option func(*config)

// WithRegions arranges members into a chain hierarchy: the first region
// (the sender's) is the parent of the second, and so on. One size builds
// the paper's single-region evaluation setup.
func WithRegions(sizes ...int) Option {
	return func(c *config) { c.regionSizes = sizes; c.star = false }
}

// WithStar arranges the regions as a two-level star: every region after
// the first attaches directly to the sender's region (the paper's
// Figure 1 shape).
func WithStar(sizes ...int) Option {
	return func(c *config) { c.regionSizes = sizes; c.star = true }
}

// WithTree arranges members into a balanced multi-level hierarchy: levels
// levels of regions, each inner region with branch children, and members
// total group members spread evenly (the scale experiments' deep-tree
// layout). An invalid shape surfaces as a NewGroup error.
func WithTree(branch, levels, members int) Option {
	return func(c *config) {
		t, err := topology.BalancedTree(branch, levels, members)
		if err != nil {
			c.tree = nil
			c.treeErr = err
			return
		}
		c.tree, c.treeErr = t, nil
	}
}

// WithSeed fixes the run's root random seed (default 1).
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithParams overrides protocol parameters; zero fields keep defaults.
func WithParams(p Params) Option {
	return func(c *config) { c.params = p }
}

// WithDataLoss drops each initial-multicast DATA packet independently with
// probability p, leaving recovery traffic lossless as in §4.
func WithDataLoss(p float64) Option {
	return func(c *config) { c.lossP = p; c.burstLoss = false }
}

// WithBurstDataLoss uses a Gilbert–Elliott burst-loss channel for DATA at
// roughly the given long-run loss rate.
func WithBurstDataLoss(p float64) Option {
	return func(c *config) { c.lossP = p; c.burstLoss = true }
}

// WithHashDataLoss drops DATA with probability p like WithDataLoss, but
// draws from per-sender counter-hash streams (netsim.HashLoss) instead of
// one shared rng consumed in global send order. Each sender's draws depend
// only on its own send count, so the model is shard-safe: groups built
// WithShards keep running genuinely parallel. The drop pattern differs
// from WithDataLoss at equal p — a different, equally deterministic,
// stream — so switching models changes results, switching shard counts
// never does.
func WithHashDataLoss(p float64) Option {
	return func(c *config) { c.lossP = p; c.hashLoss = true; c.burstLoss = false }
}

// WithHashBurstLoss is the shard-safe form of WithBurstDataLoss: a
// Gilbert–Elliott burst channel at roughly the given long-run loss rate
// (the same PGood=p/4 parameterization), whose per-(sender,receiver) chain
// advances on per-pair counter-hash draws (netsim.HashBurstLoss) instead
// of one shared rng. Like WithHashDataLoss it is a different deterministic
// stream than the legacy model at equal p, and groups built WithShards
// keep running genuinely parallel.
func WithHashBurstLoss(p float64) Option {
	return func(c *config) { c.lossP = p; c.hashLoss = true; c.burstLoss = true }
}

// WithRegionBlackout drops the initial multicast entirely for every member
// of the given region (by index), producing the paper's "regional loss"
// scenario that only remote recovery can repair (§2.2). May be repeated.
func WithRegionBlackout(region int) Option {
	return func(c *config) { c.blackouts = append(c.blackouts, region) }
}

// WithPolicy selects the buffering policy (default PolicyTwoPhase).
// PolicyFixedHold uses hold as the retention time; PolicyHashElect uses
// int(hold) ignored and c bufferers = Params.C.
func WithPolicy(kind PolicyKind) Option {
	return func(c *config) { c.policy = kind }
}

// WithPolicySpec selects the buffering policy by registry spec string,
// e.g. "two-phase", "fixed:hold=200ms" or
// "adaptive:tmin=20ms,tmax=200ms,target=2" — the same grammar rrmp-sim's
// -policy flag and sweep policy axes accept (see rrmp-sim -list-policies
// for the roster). A non-empty spec takes precedence over WithPolicy; an
// unknown or malformed spec surfaces as a NewGroup error.
func WithPolicySpec(spec string) Option {
	return func(c *config) { c.policySpec = spec }
}

// WithFixedHold sets the retention for PolicyFixedHold (default 500 ms).
func WithFixedHold(d time.Duration) Option {
	return func(c *config) { c.fixedHold = d }
}

// WithTracer streams protocol events to the tracer (e.g. &trace.Writer{W:
// os.Stderr} — mostly for the examples and debugging).
func WithTracer(t trace.Tracer) Option {
	return func(c *config) { c.tracer = t }
}

// WithByteBudget caps every member's buffer at n payload bytes
// (Params.ByteBudget): stores past the cap displace older entries —
// short-term longest-idle first, then oldest long-term copies — and a
// displaced message recovers like any other miss, or is counted
// unrecoverable, never silently lost. Zero keeps buffers unlimited.
func WithByteBudget(n int) Option {
	return func(c *config) { c.params.ByteBudget = n }
}

// WithCopyOnStore makes every member's buffer snapshot payload bytes at
// store time instead of aliasing the received slice, for applications
// that reuse or mutate publish buffers (Params.CopyOnStore).
func WithCopyOnStore() Option {
	return func(c *config) { c.params.CopyOnStore = true }
}

// WithShards runs the group on the region-sharded parallel engine with up
// to n event loops (<= 1 keeps the serial engine). Results are
// byte-identical either way. Groups with a shared-stream loss model
// (WithDataLoss, WithBurstDataLoss) fall back to the serial engine — those
// draws happen in global send order, which only one loop reproduces. The
// hash-stream models (WithHashDataLoss, WithHashBurstLoss) stay parallel.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithFailureDetector attaches the region-scoped gossip failure detector
// to every member, so recovery and search traffic routes around crashed
// peers (see Params.FDEnabled). Crash and partition scenarios want this;
// graceful-leave-only runs do not need it.
func WithFailureDetector() Option {
	return func(c *config) { c.params.FDEnabled = true }
}

// blackoutLoss drops all DATA to the victim set and defers to the inner
// model (if any) elsewhere.
type blackoutLoss struct {
	victims map[topology.NodeID]bool
	inner   netsim.LossModel
}

// Drop implements netsim.LossModel.
func (b *blackoutLoss) Drop(from, to topology.NodeID, t wire.Type) bool {
	if t == wire.TypeData && b.victims[to] {
		return true
	}
	if b.inner != nil {
		return b.inner.Drop(from, to, t)
	}
	return false
}

// Group is a simulated RRMP deployment: one sender plus receivers arranged
// in regions, driven over virtual time. Not safe for concurrent use.
type Group struct {
	cluster *runner.Cluster
	sender  *rrmp.Sender
}

// NewGroup builds a deployment from options. With no options it builds a
// single 100-member region with the paper's defaults.
func NewGroup(opts ...Option) (*Group, error) {
	cfg := config{
		regionSizes: []int{100},
		seed:        1,
		params:      rrmp.DefaultParams(),
		policy:      PolicyTwoPhase,
		fixedHold:   500 * time.Millisecond,
	}
	for _, o := range opts {
		o(&cfg)
	}
	var (
		topo *topology.Topology
		err  error
	)
	switch {
	case cfg.treeErr != nil:
		err = cfg.treeErr
	case cfg.tree != nil:
		topo = cfg.tree
	case cfg.star:
		topo, err = topology.Star(cfg.regionSizes...)
	default:
		topo, err = topology.Chain(cfg.regionSizes...)
	}
	if err != nil {
		return nil, fmt.Errorf("repro: building topology: %w", err)
	}

	var loss netsim.LossModel
	if cfg.lossP > 0 {
		only := map[wire.Type]bool{wire.TypeData: true}
		switch {
		case cfg.burstLoss && cfg.hashLoss:
			loss = netsim.NewHashBurstLoss(rng.New(cfg.seed^0xbadbad).Uint64(),
				cfg.lossP/4, 0.9, 0.02, 0.2, topo.NumNodes(), only)
		case cfg.burstLoss:
			loss = &netsim.GilbertElliott{
				PGood: cfg.lossP / 4, PBad: 0.9,
				PGB: 0.02, PBG: 0.2,
				Only: only, Rng: rng.New(cfg.seed ^ 0xbadbad),
			}
		case cfg.hashLoss:
			loss = netsim.NewHashLoss(rng.New(cfg.seed^0xbadbad).Uint64(),
				cfg.lossP, topo.NumNodes(), only)
		default:
			loss = &netsim.BernoulliLoss{P: cfg.lossP, Only: only, Rng: rng.New(cfg.seed ^ 0xbadbad)}
		}
	}
	if len(cfg.blackouts) > 0 {
		victims := make(map[topology.NodeID]bool)
		for _, r := range cfg.blackouts {
			if r < 0 || r >= topo.NumRegions() {
				return nil, fmt.Errorf("repro: blackout region %d out of range (have %d regions)", r, topo.NumRegions())
			}
			for _, n := range topo.Members(topology.RegionID(r)) {
				victims[n] = true
			}
		}
		loss = &blackoutLoss{victims: victims, inner: loss}
	}

	specStr := cfg.policySpec
	if specStr == "" {
		switch cfg.policy {
		case PolicyTwoPhase:
			specStr = policyspec.KindTwoPhase
		case PolicyFixedHold:
			specStr = policyspec.KindFixed
		case PolicyBufferAll:
			specStr = policyspec.KindAll
		case PolicyHashElect:
			specStr = policyspec.KindHash
		default:
			return nil, fmt.Errorf("repro: unknown policy kind %d", cfg.policy)
		}
	}
	spec, err := policyspec.Parse(specStr)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	policy := runner.PolicyFactory(spec, cfg.fixedHold)

	shards := cfg.shards
	if cfg.lossP > 0 && !cfg.hashLoss {
		shards = 1 // shared-stream loss draws are only deterministic serially
	}
	cluster, err := runner.NewCluster(runner.ClusterConfig{
		Topo:   topo,
		Params: cfg.params,
		Seed:   cfg.seed,
		Loss:   loss,
		Policy: policy,
		Tracer: cfg.tracer,
		Shards: shards,
	})
	if err != nil {
		return nil, fmt.Errorf("repro: building cluster: %w", err)
	}
	return &Group{cluster: cluster, sender: cluster.Sender}, nil
}

// NumMembers returns the total member count.
func (g *Group) NumMembers() int { return g.cluster.Topo.NumNodes() }

// NumRegions returns the region count.
func (g *Group) NumRegions() int { return g.cluster.Topo.NumRegions() }

// Member returns the member with the given dense id (0 <= id < NumMembers).
func (g *Group) Member(id NodeID) *Member { return g.cluster.Members[id] }

// Members returns all members in id order (shared slice; do not modify).
func (g *Group) Members() []*Member { return g.cluster.Members }

// SenderID returns the sender's node id.
func (g *Group) SenderID() NodeID { return g.cluster.Topo.Sender() }

// Publish multicasts one message from the group's sender and returns its
// id.
func (g *Group) Publish(payload []byte) MessageID { return g.sender.Publish(payload) }

// StartSessions begins the sender's periodic session messages (§2.1).
func (g *Group) StartSessions() { g.sender.StartSessions() }

// StopSessions stops them (so the simulation can drain).
func (g *Group) StopSessions() { g.sender.StopSessions() }

// Now returns the current virtual time.
func (g *Group) Now() time.Duration { return g.cluster.Engine.Now() }

// Run advances virtual time by d, executing all protocol events due.
func (g *Group) Run(d time.Duration) { g.cluster.Engine.RunUntil(g.cluster.Engine.Now() + d) }

// RunUntil advances virtual time to the absolute instant t.
func (g *Group) RunUntil(t time.Duration) { g.cluster.Engine.RunUntil(t) }

// At schedules fn at absolute virtual time t (workload scripting). On a
// sharded group the event runs on the coordinator's global lane at
// exactly t, between shard windows, like the fault schedule.
func (g *Group) At(t time.Duration, fn func()) { g.cluster.Engine.At(t, fn) }

// CountReceived returns how many members have received id.
func (g *Group) CountReceived(id MessageID) int { return g.cluster.CountReceived(id) }

// CountBuffered returns how many members currently buffer id.
func (g *Group) CountBuffered(id MessageID) int { return g.cluster.CountBuffered(id) }

// TotalPacketsSent returns all packets offered to the network so far.
func (g *Group) TotalPacketsSent() int64 { return g.cluster.Net.Stats().TotalSent() }

// TotalBytesSent returns all bytes offered to the network so far.
func (g *Group) TotalBytesSent() int64 { return g.cluster.Net.Stats().TotalBytes() }

// Crash fails a member ungracefully: its timers stop, no handoff happens,
// and its traffic is dropped from now on. Protocol state survives for a
// later Recover.
func (g *Group) Crash(id NodeID) {
	g.cluster.Members[id].Crash()
	g.cluster.Net.SetDown(id, true)
}

// Recover brings a crashed member back: its network reconnects and it
// re-runs recovery for every gap it knew about before (and learns about
// newer losses from the next session message).
func (g *Group) Recover(id NodeID) {
	g.cluster.Net.SetDown(id, false)
	g.cluster.Members[id].Recover()
}

// Partition splits the group into two halves — along region boundaries
// when there are multiple regions, otherwise down the middle of the
// member list — and drops every packet crossing the cut until Heal.
func (g *Group) Partition() {
	g.cluster.Net.SetPartition(runner.PartitionClasses(g.cluster.Topo))
}

// Heal reconnects a partitioned group.
func (g *Group) Heal() { g.cluster.Net.ClearPartition() }

// Leave makes a member depart gracefully, handing its long-term buffer to
// random region peers (§3.2).
func (g *Group) Leave(id NodeID) { g.cluster.Members[id].Leave() }

// GroupStats aggregates per-member metrics across the whole group.
type GroupStats struct {
	Delivered          int64
	Duplicates         int64
	LocalRequests      int64
	RemoteRequests     int64
	Repairs            int64
	RegionalMulticasts int64
	Handoffs           int64
	// Searches counts §3.3 search-for-bufferer episodes started;
	// SearchFailures counts those abandoned after MaxSearchTries.
	Searches       int64
	SearchFailures int64
	// Suspects counts failure-detector suspicion events (failure detector
	// runs only with WithFailureDetector / Params.FDEnabled).
	Suspects int64
	// Unrecoverable counts losses whose recovery exhausted every retry
	// budget at members still in the group — the explicit signal that a
	// message is gone, never a silent omission.
	Unrecoverable   int64
	LongTermEntries int
	BufferedEntries int
	// BufferIntegral is total message-seconds of buffering paid so far.
	BufferIntegral float64
	// ByteIntegral is total payload-byte-seconds of buffering paid so
	// far — the byte currency the two-phase policy actually saves.
	ByteIntegral float64
	// BufferedBytes and PeakBufferedBytes are the payload bytes held now
	// (summed over members) and the highest any single member ever held.
	BufferedBytes     int
	PeakBufferedBytes int
	// PressureEvictions counts entries displaced to fit newer messages
	// under Params.ByteBudget; BudgetDenials counts stores refused
	// because one payload exceeded the whole budget. Both stay zero
	// without a budget.
	PressureEvictions int
	BudgetDenials     int
	// MeanRecoveryMs averages recovery latency over all repaired losses.
	MeanRecoveryMs float64
	// MeanReRecoveryMs averages the latency of recoveries re-initiated
	// after a crash outage (Member.Recover).
	MeanReRecoveryMs float64
	// MeanBufferingMs averages store→evict times.
	MeanBufferingMs float64
}

// Stats aggregates metrics across all members at the current instant.
func (g *Group) Stats() GroupStats {
	var s GroupStats
	var recSum, recN, bufSum, bufN, rerecSum, rerecN float64
	for _, m := range g.cluster.Members {
		mm := m.Metrics()
		s.Delivered += mm.Delivered.Value()
		s.Duplicates += mm.Duplicates.Value()
		s.LocalRequests += mm.LocalReqSent.Value()
		s.RemoteRequests += mm.RemoteReqSent.Value()
		s.Repairs += mm.RepairsSent.Value()
		s.RegionalMulticasts += mm.RegionalMulticasts.Value()
		s.Handoffs += mm.HandoffsSent.Value()
		s.Searches += mm.SearchesStarted.Value()
		s.SearchFailures += mm.SearchFailures.Value()
		s.Suspects += mm.Suspects.Value()
		if !m.Crashed() && !m.Left() {
			s.Unrecoverable += mm.Unrecoverable.Value()
		}
		s.LongTermEntries += m.Buffer().LongTermCount()
		s.BufferedEntries += m.Buffer().Len()
		s.BufferIntegral += m.Buffer().OccupancyIntegral(g.Now())
		s.ByteIntegral += m.Buffer().ByteOccupancyIntegral(g.Now())
		s.BufferedBytes += m.Buffer().Bytes()
		if p := m.Buffer().PeakBytes(); p > s.PeakBufferedBytes {
			s.PeakBufferedBytes = p
		}
		s.PressureEvictions += m.Buffer().EvictedCount(core.EvictPressure)
		s.BudgetDenials += m.Buffer().DeniedCount()
		recSum += mm.RecoveryLatency.Mean() * float64(mm.RecoveryLatency.N())
		recN += float64(mm.RecoveryLatency.N())
		bufSum += mm.BufferingTime.Mean() * float64(mm.BufferingTime.N())
		bufN += float64(mm.BufferingTime.N())
		rerecSum += mm.ReRecoveryLatency.Mean() * float64(mm.ReRecoveryLatency.N())
		rerecN += float64(mm.ReRecoveryLatency.N())
	}
	if recN > 0 {
		s.MeanRecoveryMs = recSum / recN
	}
	if bufN > 0 {
		s.MeanBufferingMs = bufSum / bufN
	}
	if rerecN > 0 {
		s.MeanReRecoveryMs = rerecSum / rerecN
	}
	return s
}

package repro

import (
	"repro/internal/exp"
	"repro/internal/runner"
)

// Sweep-runner identifiers, re-exported so facade users speak one
// vocabulary (see internal/exp for the machinery and field docs).
type (
	// Sweep declares a scenario matrix (regions × loss × churn × policy).
	Sweep = exp.Sweep
	// Scenario is one expanded sweep cell.
	Scenario = exp.Scenario
	// SweepOptions set trial count, worker-pool width, and the base seed.
	SweepOptions = exp.Options
	// SweepReport is a whole sweep's aggregated, JSON-stable output.
	SweepReport = exp.Report
	// SweepCell is one aggregated cell of a report.
	SweepCell = exp.Cell
	// MetricSummary is one metric's mean / stddev / 95% CI across trials.
	MetricSummary = exp.MetricSummary
	// TrialAggregate is a multi-trial run's full metric reduction.
	TrialAggregate = exp.Aggregate
	// PolicySummary is a multi-trial A1 row.
	PolicySummary = runner.PolicySummary
	// LambdaSummary is a multi-trial A5 row.
	LambdaSummary = runner.LambdaSummary
	// TreeShape is a balanced multi-level hierarchy cell for sweeps
	// (branch, levels, total members).
	TreeShape = exp.TreeShape
	// ScaleReport is a scale run's output (BENCH_scale.json's layout).
	ScaleReport = runner.ScaleReport
	// ScaleCell is one aggregated scale cell with wall-clock annotations.
	ScaleCell = runner.ScaleCell
)

// DefaultSweep returns the standing benchmark matrix (the one
// BENCH_sweep.json tracks across PRs).
func DefaultSweep() Sweep { return exp.DefaultSweep() }

// ScaleSweep returns the standing scale matrix: balanced trees over a
// members × depth grid (the one BENCH_scale.json tracks across PRs).
func ScaleSweep() Sweep { return exp.ScaleSweep() }

// ScaleSweepXL returns the extra-large scale rows (10k and 100k members)
// appended after ScaleSweep in BENCH_scale.json; they use hash-mode loss so
// the region-sharded engine can run them parallel.
func ScaleSweepXL() Sweep { return exp.ScaleSweepXL() }

// ScaleSweep1M returns the 1M-member hash-burst row appended after the XL
// rows in BENCH_scale.json — the final rung of the scale ladder, run as a
// separate sweep so the Burst axis never re-bytes the committed XL cells.
func ScaleSweep1M() Sweep { return exp.ScaleSweep1M() }

// RunScale runs the given sweeps' cells in order, timing each cell, and
// returns the scale report (deterministic aggregates plus
// machine-dependent wall-clock and events/sec annotations).
func RunScale(o SweepOptions, sweeps ...Sweep) (ScaleReport, error) {
	return runner.RunScale(o, sweeps...)
}

// RunSweep expands the sweep and runs every (cell, trial) pair across a
// bounded worker pool. Aggregates are byte-identical at any Parallel
// setting: trials parallelize perfectly because each one is a
// self-contained deterministic simulation.
func RunSweep(o SweepOptions, sw Sweep) (SweepReport, error) {
	return runner.RunSweep(o, sw)
}

// RunScenario runs a single scenario cell once with the given seed and
// returns its raw metrics (the kernel RunSweep aggregates).
func RunScenario(sc Scenario, seed uint64) (map[string]float64, error) {
	return runner.RunScenario(sc, seed)
}

// AblationPoliciesTrials is the multi-trial variant of AblationPolicies:
// every column becomes a mean ± 95% CI across o.Trials seeds.
func AblationPoliciesTrials(o SweepOptions) ([]PolicySummary, error) {
	return runner.AblationPoliciesTrials(o)
}

// AblationLambdaTrials is the multi-trial variant of AblationLambda.
func AblationLambdaTrials(lambdas []float64, runs int, o SweepOptions) ([]LambdaSummary, error) {
	return runner.AblationLambdaTrials(lambdas, runs, o)
}

package repro

import (
	"io"

	"repro/internal/exp"
	"repro/internal/runner"
	"repro/internal/workload"
)

// Sweep-runner identifiers, re-exported so facade users speak one
// vocabulary (see internal/exp for the machinery and field docs).
type (
	// Sweep declares a scenario matrix (regions × loss × churn × policy).
	Sweep = exp.Sweep
	// Scenario is one expanded sweep cell.
	Scenario = exp.Scenario
	// SweepOptions set trial count, worker-pool width, and the base seed.
	SweepOptions = exp.Options
	// SweepReport is a whole sweep's aggregated, JSON-stable output.
	SweepReport = exp.Report
	// SweepCell is one aggregated cell of a report.
	SweepCell = exp.Cell
	// MetricSummary is one metric's mean / stddev / 95% CI across trials.
	MetricSummary = exp.MetricSummary
	// TrialAggregate is a multi-trial run's full metric reduction.
	TrialAggregate = exp.Aggregate
	// PolicySummary is a multi-trial A1 row.
	PolicySummary = runner.PolicySummary
	// FitnessWeights weight the sweep fitness score's four objectives.
	FitnessWeights = exp.FitnessWeights
	// FitnessRow is one candidate's fitness score plus its raw objectives.
	FitnessRow = exp.FitnessRow
	// LambdaSummary is a multi-trial A5 row.
	LambdaSummary = runner.LambdaSummary
	// TreeShape is a balanced multi-level hierarchy cell for sweeps
	// (branch, levels, total members).
	TreeShape = exp.TreeShape
	// ScaleReport is a scale run's output (BENCH_scale.json's layout).
	ScaleReport = runner.ScaleReport
	// ScaleCell is one aggregated scale cell with wall-clock annotations.
	ScaleCell = runner.ScaleCell
	// WorkloadSpec declares a multi-client publish workload (arrival
	// process, Zipf volume skew, payload sizes, VoD late joiners); set it
	// on Scenario.Workload or the Sweep.Workloads axis.
	WorkloadSpec = workload.Spec
	// WorkloadWindow is one rate-modulation window of a WorkloadSpec.
	WorkloadWindow = workload.Window
	// WorkloadTimeline is a materialized publish timeline — the merged
	// (at, client, bytes) event sequence both protocol kernels drive.
	WorkloadTimeline = workload.Timeline
	// WorkloadEvent is one publish instant of a WorkloadTimeline.
	WorkloadEvent = workload.Event
)

// DefaultSweep returns the standing benchmark matrix (the one
// BENCH_sweep.json tracks across PRs).
func DefaultSweep() Sweep { return exp.DefaultSweep() }

// ScaleSweep returns the standing scale matrix: balanced trees over a
// members × depth grid (the one BENCH_scale.json tracks across PRs).
func ScaleSweep() Sweep { return exp.ScaleSweep() }

// ScaleSweepXL returns the extra-large scale rows (10k and 100k members)
// appended after ScaleSweep in BENCH_scale.json; they use hash-mode loss so
// the region-sharded engine can run them parallel.
func ScaleSweepXL() Sweep { return exp.ScaleSweepXL() }

// ScaleSweep1M returns the 1M-member hash-burst row appended after the XL
// rows in BENCH_scale.json — the final rung of the scale ladder, run as a
// separate sweep so the Burst axis never re-bytes the committed XL cells.
func ScaleSweep1M() Sweep { return exp.ScaleSweep1M() }

// RunScale runs the given sweeps' cells in order, timing each cell, and
// returns the scale report (deterministic aggregates plus
// machine-dependent wall-clock and events/sec annotations).
func RunScale(o SweepOptions, sweeps ...Sweep) (ScaleReport, error) {
	return runner.RunScale(o, sweeps...)
}

// WorkloadSweep returns the standing multi-client workload matrix (three
// workload shapes × loss × policy × protocol, hash-mode loss) appended
// after DefaultSweep in BENCH_sweep.json.
func WorkloadSweep() Sweep { return exp.WorkloadSweep() }

// AdaptiveSweep returns the demand-aware policy family (bursty workload ×
// loss × {two-phase, fixed, adaptive}, hash-mode loss) appended after the
// workload family in BENCH_sweep.json.
func AdaptiveSweep() Sweep { return exp.AdaptiveSweep() }

// MultiClientWorkload returns the workload family's many-publishers cell:
// 8 Poisson publishers, Zipf-1.1 volume skew, lognormal payloads.
func MultiClientWorkload() *WorkloadSpec { return exp.MultiClientWorkload() }

// BurstyWorkload returns the workload family's diurnal-burst cell: 4
// burst publishers under hot/cool rate windows.
func BurstyWorkload() *WorkloadSpec { return exp.BurstyWorkload() }

// VoDPrefixPush returns the workload family's video-on-demand cell: one
// sender pushes a 1 KiB prefix and a quarter of the members join late,
// needing the whole prefix recovered.
func VoDPrefixPush() *WorkloadSpec { return exp.VoDPrefixPush() }

// RunSweep expands the sweep and runs every (cell, trial) pair across a
// bounded worker pool. Aggregates are byte-identical at any Parallel
// setting: trials parallelize perfectly because each one is a
// self-contained deterministic simulation.
func RunSweep(o SweepOptions, sw Sweep) (SweepReport, error) {
	return runner.RunSweep(o, sw)
}

// RunSweeps expands every sweep in order and runs the concatenated cells
// through one worker pool and into one report — how BENCH_sweep.json
// appends the workload family after the standing matrix without re-byting
// a single committed cell.
func RunSweeps(o SweepOptions, sweeps ...Sweep) (SweepReport, error) {
	return runner.RunSweeps(o, sweeps...)
}

// DefaultFitnessWeights returns the standing objective weighting the A8
// fitness table and rrmp-sim -fitness-weights default to.
func DefaultFitnessWeights() FitnessWeights { return exp.DefaultFitnessWeights() }

// ParseFitnessWeights parses a "delivery=1,bytesec=0.25,..." weight spec;
// omitted keys keep their defaults, the empty string is all defaults.
func ParseFitnessWeights(s string) (FitnessWeights, error) { return exp.ParseFitnessWeights(s) }

// SweepFitness scores a sweep report's cells against each other under the
// given weights and returns the ranking, best first. Costs normalize over
// the whole report — filter rep.Cells first to rank within one family.
func SweepFitness(rep SweepReport, w FitnessWeights) []FitnessRow {
	return runner.SweepFitness(rep, w)
}

// RunScenario runs a single scenario cell once with the given seed and
// returns its raw metrics (the kernel RunSweep aggregates).
func RunScenario(sc Scenario, seed uint64) (map[string]float64, error) {
	return runner.RunScenario(sc, seed)
}

// RunScenarioTimeline is RunScenario driven by an externally supplied
// publish timeline — the trace-replay path. Replaying a recorded timeline
// reproduces the recording run's metrics byte for byte.
func RunScenarioTimeline(sc Scenario, seed uint64, tl WorkloadTimeline) (map[string]float64, error) {
	return runner.RunScenarioTimeline(sc, seed, tl)
}

// ScenarioTimeline materializes the scenario's merged publish timeline —
// what RunScenario would generate and what RecordTrace persists.
func ScenarioTimeline(sc Scenario, seed uint64) (WorkloadTimeline, error) {
	tl, _, err := runner.TimelineFor(sc, seed)
	return tl, err
}

// RecordTrace writes a timeline to w in the canonical rrmp-trace/v1 text
// format.
func RecordTrace(w io.Writer, tl WorkloadTimeline) error { return workload.Record(w, tl) }

// ReplayTrace parses a canonical rrmp-trace/v1 stream back into a
// timeline, rejecting malformed or non-canonical input.
func ReplayTrace(r io.Reader) (WorkloadTimeline, error) { return workload.Replay(r) }

// AblationPoliciesTrials is the multi-trial variant of AblationPolicies:
// every column becomes a mean ± 95% CI across o.Trials seeds.
func AblationPoliciesTrials(o SweepOptions) ([]PolicySummary, error) {
	return runner.AblationPoliciesTrials(o)
}

// AblationLambdaTrials is the multi-trial variant of AblationLambda.
func AblationLambdaTrials(lambdas []float64, runs int, o SweepOptions) ([]LambdaSummary, error) {
	return runner.AblationLambdaTrials(lambdas, runs, o)
}

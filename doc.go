// Package repro is a reproduction of "Optimizing Buffer Management for
// Reliable Multicast" (Xiao, Birman, van Renesse; DSN 2002).
//
// The paper's contribution — a two-phase buffer management algorithm for
// the randomized reliable multicast protocol RRMP — lives in internal/core
// (the buffering state machine and policies) and internal/rrmp (the
// protocol engine: randomized local/remote error recovery, the
// search-for-bufferer protocol, long-term buffer handoff on leave). This
// package is the public facade: it assembles complete simulated
// deployments, runs workloads, and exposes the experiment drivers that
// regenerate every figure in the paper's evaluation.
//
// # Quick start
//
//	g, err := repro.NewGroup(repro.WithRegions(50), repro.WithDataLoss(0.2))
//	if err != nil { ... }
//	g.StartSessions()
//	id := g.Publish([]byte("hello"))
//	g.Run(2 * time.Second)                 // advance virtual time
//	fmt.Println(g.CountReceived(id))       // 50: every member recovered
//
// All time is virtual (a deterministic discrete-event simulator): runs are
// exactly reproducible from a seed, and two identical runs produce
// identical packet interleavings. The identical protocol code also runs on
// real UDP sockets via internal/udptransport.
//
// # Reproducing the paper
//
// The Figure* functions regenerate the evaluation (§4): Figures 3 and 4
// (long-term bufferer distribution), Figure 6 (feedback-based buffering
// time), Figure 7 (received vs buffered over time), and Figures 8 and 9
// (search time). The Ablation* functions run the comparisons DESIGN.md
// motivates: buffering-policy cost, load balance against a tree protocol,
// multicast-query reply implosion, churn handoff, the λ tradeoff, and
// stability-detection traffic overhead. cmd/rrmp-figures prints them all.
//
// # Sweeps and statistics
//
// RunSweep runs declarative scenario matrices (region layout × data loss ×
// churn × buffering policy, under either protocol: Scenario.Protocol
// selects the RRMP engine or the RMTP repair-server baseline) across a
// bounded worker pool, with every metric aggregated to mean / stddev /
// 95% CI over independently seeded trials (internal/exp). Aggregates are
// byte-identical at any parallelism. cmd/rrmp-sim exposes the same
// machinery via -sweep, -trials, -parallel and -json, and records the
// default matrix — including the RRMP-vs-RMTP families — in
// BENCH_sweep.json. See README.md for the operator's manual and DESIGN.md
// for the rationale.
package repro
